#include "pardis/transfer/spmd_server.hpp"

#include <algorithm>
#include <thread>

#include "pardis/common/config.hpp"
#include "pardis/common/log.hpp"
#include "pardis/dseq/plan.hpp"
#include "pardis/obs/phase_trace.hpp"
#include "pardis/rts/collectives.hpp"
#include "pardis/transfer/framing.hpp"

namespace pardis::transfer {

namespace {

constexpr auto kIdlePollSleep = std::chrono::microseconds(30);

}  // namespace

SpmdServer::SpmdServer(orb::Orb& orb, rts::Communicator& comm,
                       std::string host)
    : orb_(&orb),
      comm_(&comm),
      host_(std::move(host)),
      queue_cap_(std::max<std::size_t>(1, env_u64("PARDIS_SERVER_QUEUE", 64))),
      worker_count_(
          std::max<std::size_t>(1, env_u64("PARDIS_SERVER_WORKERS", 4))),
      credit_grant_(static_cast<cdr::ULong>(std::min<std::uint64_t>(
          std::max<std::uint64_t>(1, env_u64("PARDIS_SERVER_CREDIT", 32)),
          queue_cap_))),
      chaos_kill_every_(env_u64("PARDIS_CHAOS_KILL_EVERY", 0)) {
  obs::MetricsRegistry& m = orb_->metrics();
  pipelined_requests_ = &m.counter("server.pipeline.requests");
  pipelined_rejects_ = &m.counter("server.pipeline.rejects");
  credits_granted_ = &m.counter("server.pipeline.credits_granted");
  chaos_kills_ = &m.counter("server.chaos.kills");
  queue_depth_ = &m.gauge("server.pipeline.queue_depth");
  pipeline_inflight_ = &m.gauge("server.pipeline.inflight");
  pipeline_latency_us_ = &m.histogram("server.pipeline.latency_us");
  pipeline_queue_wait_us_ = &m.histogram("server.pipeline.queue_wait_us");
  pipeline_exec_us_ = &m.histogram("server.pipeline.exec_us");
}

SpmdServer::~SpmdServer() { stop_workers(); }

void SpmdServer::ensure_listening() {
  if (acceptor_) return;
  acceptor_ = orb_->transport().listen(host_, 0);
  // Collect every rank's port so the object reference can advertise one
  // endpoint per computing thread.
  const auto ports =
      rts::allgather_value(*comm_, acceptor_->address().port);
  endpoints_.clear();
  endpoints_.reserve(ports.size());
  for (int port : ports) {
    endpoints_.push_back(net::Address{host_, port});
  }
}

void SpmdServer::activate(const std::string& name, SpmdServant& servant,
                          ArgDistPolicy policy) {
  ensure_listening();
  activations_[name] = Activation{&servant, std::move(policy)};
  orb::ObjectRef ref;
  ref.type_id = servant.type_id();
  ref.name = name;
  ref.host = host_;
  ref.endpoints = endpoints_;
  last_ref_ = ref;
  comm_->barrier();  // all ranks ready before the object becomes visible
  if (comm_->rank() == 0) {
    orb_->naming().register_object(ref);
  }
}

void SpmdServer::deactivate(const std::string& name) {
  activations_.erase(name);
  comm_->barrier();
  if (comm_->rank() == 0) {
    orb_->naming().unregister_object(name, host_);
  }
}

const orb::ObjectRef& SpmdServer::object_ref() const {
  if (!last_ref_) {
    throw INTERNAL("object_ref() before activate()");
  }
  return *last_ref_;
}

void SpmdServer::serve() {
  while (!shutdown_) {
    const Event event = next_event(/*blocking=*/true);
    handle_event(event);
  }
}

bool SpmdServer::poll() {
  if (shutdown_) return false;
  const Event event = next_event(/*blocking=*/false);
  if (event.kind == EventKind::kNone) return false;
  handle_event(event);
  return true;
}

void SpmdServer::handle_event(const Event& event) {
  switch (event.kind) {
    case EventKind::kBind:
      handle_bind(event);
      break;
    case EventKind::kRequest:
      handle_request(event);
      break;
    case EventKind::kShutdown:
      shutdown_ = true;
      break;
    case EventKind::kNone:
      break;
  }
}

// ---- event production --------------------------------------------------

void SpmdServer::classify_new_connections() {
  while (auto conn = acceptor_->try_accept()) {
    unclassified_.push_back(std::move(conn));
  }
  for (auto it = unclassified_.begin(); it != unclassified_.end();) {
    auto frame_bytes = (*it)->try_recv();
    if (!frame_bytes) {
      if ((*it)->eof()) {
        it = unclassified_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    const orb::Frame info = orb::parse_frame(*frame_bytes);
    auto dec = orb::body_decoder(*frame_bytes, info);
    switch (info.type) {
      case orb::MsgType::kBindRequest: {
        Event event;
        event.kind = EventKind::kBind;
        event.bind = orb::BindRequest::decode(dec);
        event.binding_id = event.bind.binding_id;
        bind_controls_[event.binding_id] = *it;
        pending_events_.push_back(std::move(event));
        break;
      }
      case orb::MsgType::kHello: {
        const orb::Hello hello = orb::Hello::decode(dec);
        pending_hellos_[hello.binding_id][hello.client_rank] = *it;
        break;
      }
      case orb::MsgType::kShutdown: {
        Event event;
        event.kind = EventKind::kShutdown;
        pending_events_.push_back(std::move(event));
        break;
      }
      default:
        PARDIS_LOG_WARN << "unexpected first frame " << to_string(info.type)
                        << " on new connection; dropping it";
        break;
    }
    it = unclassified_.erase(it);
  }
}

SpmdServer::Event SpmdServer::wait_event(bool blocking) {
  // Runs on rank 0 only.
  const auto t0 = Clock::now();
  for (;;) {
    classify_new_connections();
    if (!pending_events_.empty()) {
      Event event = std::move(pending_events_.front());
      pending_events_.pop_front();
      event.wait = Clock::now() - t0;
      return event;
    }
    // Poll active control connections for requests.
    for (auto it = bindings_.begin(); it != bindings_.end();) {
      BindingState& bs = it->second;
      if (!bs.control) {
        ++it;
        continue;
      }
      // Drain every frame the stream has already buffered before moving
      // on: a pipelined client legitimately has a whole credit window of
      // requests in flight, and admitting only one per poll cycle would
      // cap throughput at 1/kIdlePollSleep regardless of depth.  The
      // drain is bounded by the client's credit window plus one control
      // frame, so no binding can starve its siblings.
      bool erased = false;
      while (auto frame_bytes = bs.control->try_recv()) {
        const orb::Frame info = orb::parse_frame(*frame_bytes);
        PARDIS_LOG_TRACE << "server rank 0 got control frame "
                         << to_string(info.type) << " (" << frame_bytes->size()
                         << " bytes)";
        if (info.type == orb::MsgType::kRequest && info.mux) {
          // Pipelined request: admitted to the worker pool on this rank
          // only — never broadcast to the sibling ranks.
          admit_pipelined(it->first, bs, std::move(*frame_bytes), info);
          continue;
        }
        if (info.type == orb::MsgType::kRequest) {
          Event event;
          event.kind = EventKind::kRequest;
          event.binding_id = it->first;
          event.frame = std::move(*frame_bytes);
          event.frame_info = info;
          event.wait = Clock::now() - t0;
          return event;
        }
        if (info.type == orb::MsgType::kShutdown) {
          Event event;
          event.kind = EventKind::kShutdown;
          event.wait = Clock::now() - t0;
          return event;
        }
        if (info.type == orb::MsgType::kUnbind) {
          // Polite unbind: the client returned its end of the control
          // stream to the transport pool, so recycle ours — the next frame
          // on it, if any, is a fresh BindRequest from a pooled
          // reconnection, which the classifier handles like any new
          // connection.  (Sibling ranks keep their table entries, exactly
          // as in the abrupt-EOF path below.)
          PARDIS_LOG_DEBUG << "binding " << it->first << " unbound";
          unclassified_.push_back(std::move(bs.control));
          it = bindings_.erase(it);
          erased = true;
          break;
        }
        PARDIS_LOG_WARN << "unexpected " << to_string(info.type)
                        << " on control connection; ignoring";
      }
      if (erased) {
        continue;
      }
      if (bs.control->eof()) {
        // Client unbound; drop the binding on this rank.  (Sibling ranks
        // keep their connection table entries; they are only touched by
        // requests, which can no longer arrive for this binding.)
        it = bindings_.erase(it);
        continue;
      }
      ++it;
    }
    if (!blocking) {
      return Event{};
    }
    std::this_thread::sleep_for(kIdlePollSleep);
  }
}

SpmdServer::Event SpmdServer::next_event(bool blocking) {
  // Rank 0 produces the event and broadcasts what siblings need.
  Event event;
  pardis::Bytes shared;
  if (comm_->rank() == 0) {
    event = wait_event(blocking);
    cdr::Encoder enc;
    enc.put_octet(static_cast<cdr::Octet>(event.kind));
    enc.put_ulong(event.binding_id);
    if (event.kind == EventKind::kBind) {
      event.bind.encode(enc);
    }
    shared = enc.take();
  }
  comm_->bcast_bytes(shared, 0);
  if (comm_->rank() != 0) {
    cdr::Decoder dec{BytesView(shared)};
    event.kind = static_cast<EventKind>(dec.get_octet());
    event.binding_id = dec.get_ulong();
    if (event.kind == EventKind::kBind) {
      event.bind = orb::BindRequest::decode(dec);
    }
  }
  return event;
}

// ---- bind handling -------------------------------------------------------

void SpmdServer::collect_hellos(
    cdr::ULong binding_id, int client_ranks,
    std::vector<std::shared_ptr<transport::Stream>>& out) {
  out.assign(static_cast<std::size_t>(client_ranks), nullptr);
  int have = 0;
  // Adopt hellos that already arrived.
  auto& stash = pending_hellos_[binding_id];
  for (auto& [rank, conn] : stash) {
    if (rank < static_cast<cdr::ULong>(client_ranks) &&
        !out[rank]) {
      out[rank] = std::move(conn);
      ++have;
    }
  }
  pending_hellos_.erase(binding_id);
  // Accept until the full set arrived; stash anything unrelated.  Note:
  // rank 0's classifier may already have accepted a data connection whose
  // first frame was still in flight — drain `unclassified_` before blocking
  // in accept(), or those connections would never be looked at again.
  while (have < client_ranks) {
    std::shared_ptr<transport::Stream> conn;
    if (!unclassified_.empty()) {
      conn = std::move(unclassified_.front());
      unclassified_.erase(unclassified_.begin());
    } else {
      conn = acceptor_->accept();
    }
    if (!conn) {
      throw COMM_FAILURE("acceptor closed while collecting bind connections");
    }
    const pardis::Bytes frame_bytes = conn->recv_or_throw();
    const orb::Frame info = orb::parse_frame(frame_bytes);
    auto dec = orb::body_decoder(frame_bytes, info);
    switch (info.type) {
      case orb::MsgType::kHello: {
        const orb::Hello hello = orb::Hello::decode(dec);
        if (hello.binding_id == binding_id &&
            hello.client_rank < static_cast<cdr::ULong>(client_ranks) &&
            !out[hello.client_rank]) {
          out[hello.client_rank] = std::move(conn);
          ++have;
        } else {
          pending_hellos_[hello.binding_id][hello.client_rank] =
              std::move(conn);
        }
        break;
      }
      case orb::MsgType::kBindRequest: {
        // A concurrent bind from another client; queue it (rank 0 only —
        // other ranks' acceptors never receive bind requests).
        Event event;
        event.kind = EventKind::kBind;
        event.bind = orb::BindRequest::decode(dec);
        event.binding_id = event.bind.binding_id;
        bind_controls_[event.binding_id] = std::move(conn);
        pending_events_.push_back(std::move(event));
        break;
      }
      case orb::MsgType::kShutdown: {
        Event event;
        event.kind = EventKind::kShutdown;
        pending_events_.push_back(std::move(event));
        break;
      }
      default:
        PARDIS_LOG_WARN << "unexpected " << to_string(info.type)
                        << " while collecting hellos";
        break;
    }
  }
}

void SpmdServer::handle_bind(const Event& event) {
  const orb::BindRequest& req = event.bind;
  BindingState bs;
  bs.id = req.binding_id;
  bs.client_ranks = static_cast<int>(req.client_ranks);
  bs.collective = req.collective;
  bs.object_key = req.object_key;

  const auto activation = activations_.find(req.object_key);
  const bool known = activation != activations_.end();

  if (known && req.collective) {
    // Every rank accepts one data connection per client rank.  A
    // non-collective (_bind) client opens only the control connection.
    collect_hellos(req.binding_id, bs.client_ranks, bs.data);
  }

  if (comm_->rank() == 0) {
    auto control_it = bind_controls_.find(req.binding_id);
    if (control_it == bind_controls_.end()) {
      throw INTERNAL("bind event without control connection");
    }
    bs.control = std::move(control_it->second);
    bind_controls_.erase(control_it);
    try {
      send_frame(*bs.control, orb::MsgType::kBindAck, [&](cdr::Encoder& e) {
        orb::BindAck ack;
        ack.binding_id = req.binding_id;
        ack.status =
            known ? orb::BindStatus::kOk : orb::BindStatus::kUnknownObject;
        ack.server_ranks = static_cast<cdr::ULong>(comm_->size());
        // Pipelining rides the control stream of non-collective bindings;
        // the grant is the client's initial credit window.
        ack.credit = known && !req.collective ? credit_grant_ : 0;
        ack.message = known ? "" : "unknown object '" + req.object_key + "'";
        ack.encode(e);
        if (known) {
          activation->second.policy.encode(e);
        }
      });
    } catch (const SystemException& e) {
      // The client (or a chaotic link) tore the stream down between accept
      // and ack.  A dead client must never take the server with it: drop
      // the connection and move on — the client rebinds on a fresh stream.
      orb_->metrics().counter("server.binds.client_gone").add();
      PARDIS_LOG_DEBUG << "bind ack for binding " << req.binding_id
                       << " dropped (client gone): " << e.what();
      bs.control->close();
      return;
    }
  }
  if (known) {
    orb_->metrics().counter("server.binds").add();
    bindings_[req.binding_id] = std::move(bs);
    PARDIS_LOG_DEBUG << "rank " << comm_->rank() << " bound client ("
                     << req.client_ranks << " ranks) to '" << req.object_key
                     << "'";
  }
}

// ---- request handling ------------------------------------------------------

void SpmdServer::handle_request(const Event& event) {
  PARDIS_LOG_DEBUG << "rank " << comm_->rank() << " handle_request begin";
  stats_.reset();
  const auto t0 = Clock::now();
  const int rank = comm_->rank();
  const int nranks = comm_->size();
  orb_->metrics().counter("server.requests").add();
  obs::TracedTimer timer(stats_.timer, &orb_->tracer(),
                         obs::role_pid(obs::kServerPid),
                         static_cast<std::uint32_t>(rank));

  // The event wait on the communicating thread overlaps the client's
  // request transmission; charge it as receive time (§3.2's t_r starts
  // when the server begins waiting for the request).
  if (rank == 0) {
    timer.add(Phase::kRecv, event.wait);
  }

  // Rank 0 re-broadcasts the header (scalars + descriptors, *not* the bulk
  // data sections); siblings decode it.
  orb::RequestHeader header;
  bool frame_little_endian = pardis::host_is_little_endian();
  std::size_t data_cursor = 0;
  {
    pardis::Bytes shared;
    if (rank == 0) {
      auto dec = orb::body_decoder(event.frame, event.frame_info);
      header = orb::RequestHeader::decode(dec);
      data_cursor = dec.position();
      frame_little_endian = event.frame_info.little_endian;
      cdr::Encoder enc;
      enc.put_boolean(frame_little_endian);
      header.encode(enc);
      shared = enc.take();
    }
    comm_->bcast_bytes(shared, 0);
    if (rank != 0) {
      cdr::Decoder dec{BytesView(shared)};
      frame_little_endian = dec.get_boolean();
      header = orb::RequestHeader::decode(dec);
    }
  }

  // The request span opens once the operation is known; the preceding
  // event-wait is already charged (and traced) as receive time.
  const obs::SpanGuard span(&orb_->tracer(), "request " + header.operation,
                            "request", obs::role_pid(obs::kServerPid),
                            static_cast<std::uint32_t>(rank));

  const auto binding_it = bindings_.find(header.binding_id);
  if (binding_it == bindings_.end()) {
    throw INTERNAL("request for unknown binding " +
                   std::to_string(header.binding_id));
  }
  BindingState& binding = binding_it->second;
  const auto activation_it = activations_.find(binding.object_key);

  ServerCall call;
  call.comm_ = comm_;
  call.operation_ = header.operation;
  call.collective_ = header.collective;
  call.scalar_args_ = std::move(header.scalar_args);
  call.args_little_endian_ = frame_little_endian;

  // ---- receive distributed arguments ----
  static const ArgDistPolicy kEmptyPolicy;
  const ArgDistPolicy& policy = activation_it != activations_.end()
                                    ? activation_it->second.policy
                                    : kEmptyPolicy;
  for (const orb::DSeqDescriptor& desc : header.dseqs) {
    ServerCall::InArg arg;
    arg.desc = desc;
    arg.dist = policy.server_dist(header.operation, desc.arg_index,
                                  desc.total_length, nranks);
    arg.little_endian = frame_little_endian;
    if (desc.dir == orb::ArgDir::kOut) {
      call.in_args_.push_back(std::move(arg));
      continue;
    }
    const std::size_t my_bytes = arg.dist.count(rank) * desc.elem_size;
    arg.chunk.resize(my_bytes);

    if (header.method == orb::TransferMethod::kCentralized) {
      // Rank 0 slices the in-frame data section per the server template and
      // scatters the pieces (§3.2).
      std::vector<pardis::Bytes> parts;
      if (rank == 0) {
        timer.time(Phase::kUnpack, [&] {
          cdr::Decoder dec(BytesView(event.frame),
                           event.frame_info.little_endian);
          (void)dec.get_octets(data_cursor);
          dec.align(8);
          const auto all =
              dec.get_octets(desc.total_length * desc.elem_size);
          data_cursor = dec.position();
          parts.resize(static_cast<std::size_t>(nranks));
          std::size_t offset = 0;
          for (int r = 0; r < nranks; ++r) {
            const std::size_t bytes = arg.dist.count(r) * desc.elem_size;
            parts[static_cast<std::size_t>(r)].assign(
                all.begin() + static_cast<std::ptrdiff_t>(offset),
                all.begin() + static_cast<std::ptrdiff_t>(offset + bytes));
            offset += bytes;
          }
        });
      }
      const pardis::Bytes mine = timer.time(
          Phase::kScatter, [&] { return comm_->scatter_bytes(parts, 0); });
      timer.time(Phase::kUnpack, [&] {
        if (mine.size() != arg.chunk.size()) {
          throw MARSHAL("scattered chunk size mismatch");
        }
        arg.chunk = mine;
      });
    } else {
      // Multi-port: receive this rank's segments directly from the owning
      // client threads (§3.3).
      const dseq::RedistributionPlan plan(dist_from_counts(desc.src_counts),
                                          arg.dist);
      for (int i = 0; i < binding.client_ranks; ++i) {
        for (const dseq::Segment& seg : plan.incoming(rank)) {
          if (seg.src_rank != i) continue;
          transport::Stream& conn =
              *binding.data[static_cast<std::size_t>(i)];
          const pardis::Bytes frame_bytes =
              timer.time(Phase::kRecv, [&] { return conn.recv_or_throw(); });
          timer.time(Phase::kUnpack, [&] {
            const orb::Frame info = orb::parse_frame(frame_bytes);
            if (info.type != orb::MsgType::kArgTransfer) {
              throw MARSHAL("expected ArgTransfer frame");
            }
            auto dec = orb::body_decoder(frame_bytes, info);
            const auto h = orb::ArgTransferHeader::decode(dec);
            if (h.request_id != header.request_id ||
                h.arg_index != desc.arg_index ||
                h.dst_offset != seg.dst_offset || h.count != seg.count) {
              throw MARSHAL("unexpected argument-transfer segment");
            }
            dec.align(8);
            const auto data = dec.get_octets(seg.count * desc.elem_size);
            std::memcpy(arg.chunk.data() + seg.dst_offset * desc.elem_size,
                        data.data(), data.size());
            if (info.little_endian != frame_little_endian) {
              // All transfer frames of one request share the sender's
              // byte order; mixed orders within one argument are not
              // representable in InArg.
              throw MARSHAL("mixed byte orders in argument transfer");
            }
          });
        }
      }
    }
    call.in_args_.push_back(std::move(arg));
  }

  // ---- dispatch (every rank) ----
  auto [my_status, my_payload] = guarded_dispatch(
      activation_it != activations_.end() ? activation_it->second.servant
                                          : nullptr,
      binding.object_key, call);

  // The computing threads synchronize after the invocation (§3.2/§3.3);
  // this is Table 2's exit barrier.
  timer.time(Phase::kBarrier, [&] { comm_->barrier(); });

  // Agree on the outcome: any failing rank fails the invocation.
  cdr::Encoder outcome_enc;
  outcome_enc.put_octet(static_cast<cdr::Octet>(my_status));
  outcome_enc.put_octet_sequence(my_payload);
  auto outcomes = comm_->gather_bytes(outcome_enc.bytes(), 0);
  orb::ReplyStatus status = orb::ReplyStatus::kNoException;
  pardis::Bytes payload;
  if (rank == 0) {
    for (auto& bytes : outcomes) {
      cdr::Decoder dec{BytesView(bytes)};
      const auto s = static_cast<orb::ReplyStatus>(dec.get_octet());
      auto p = dec.get_octet_sequence();
      if (s != orb::ReplyStatus::kNoException) {
        status = s;
        payload = std::move(p);
        break;
      }
    }
    if (status == orb::ReplyStatus::kNoException) {
      status = my_status;
      payload = std::move(my_payload);
    }
  }
  status = rts::bcast_value(*comm_, status, 0);

  if (!header.response_expected) {
    timer.add(Phase::kTotal, Clock::now() - t0);
    return;
  }

  // ---- reply ----
  const bool ok = status == orb::ReplyStatus::kNoException;
  std::vector<orb::DSeqDescriptor> reply_descs;
  if (ok) {
    for (const ServerCall::OutArg& out : call.out_args_) {
      reply_descs.push_back(out.desc);
    }
  }

  // Report server-side phases in the reply; the total-so-far stands in for
  // kTotal (the reply's own send time cannot be part of its content).
  InvocationStats snapshot = stats_;
  snapshot.timer.add(Phase::kTotal, Clock::now() - t0);
  const auto stats_now =
      reduce_stats(*comm_, snapshot, &orb_->metrics(), "server.phase.");

  if (header.method == orb::TransferMethod::kCentralized) {
    // Gather result data at the communicating thread and piggyback it on
    // the reply frame.  As on the client's request path, the per-rank
    // result blocks stay separate buffers and ride the reply frame as
    // gather segments — no staging concatenation on rank 0.
    std::vector<std::vector<pardis::Bytes>> gathered(call.out_args_.size());
    if (ok) {
      timer.time(Phase::kGather, [&] {
        for (std::size_t i = 0; i < call.out_args_.size(); ++i) {
          auto parts = comm_->gather_bytes(call.out_args_[i].chunk, 0);
          if (rank == 0) gathered[i] = std::move(parts);
        }
      });
    }
    if (rank == 0) {
      io::GatherList frame = timer.time(Phase::kPack, [&] {
        cdr::Encoder enc;
        orb::begin_frame(enc, orb::MsgType::kReply);
        orb::ReplyHeader reply;
        reply.request_id = header.request_id;
        reply.status = status;
        reply.payload = std::move(payload);
        reply.dseqs = reply_descs;
        reply.server_stats_ms.assign(stats_now.begin(), stats_now.end());
        reply.encode(enc);
        io::GatherList gl;
        gl.append(enc.take());
        for (std::vector<pardis::Bytes>& parts : gathered) {
          gl.pad_to(8);  // same wire layout as Encoder::align(8)
          for (pardis::Bytes& part : parts) gl.append(std::move(part));
        }
        return gl;
      });
      try {
        timer.time(Phase::kSend,
                   [&] { send_framed(*binding.control, std::move(frame)); });
      } catch (const SystemException& e) {
        // Client died before collecting its reply; the event loop reaps
        // the binding when it sees eof.  Never let it take the rank down.
        orb_->metrics().counter("server.replies.client_gone").add();
        PARDIS_LOG_DEBUG << "reply for request " << header.request_id
                         << " dropped (client gone): " << e.what();
      }
    }
  } else {
    // Multi-port: reply header first (so the client learns the result
    // shapes), then every rank streams its segments directly.
    if (rank == 0) {
      try {
        send_frame(*binding.control, orb::MsgType::kReply,
                   [&](cdr::Encoder& enc) {
                     orb::ReplyHeader reply;
                     reply.request_id = header.request_id;
                     reply.status = status;
                     reply.payload = std::move(payload);
                     reply.dseqs = reply_descs;
                     reply.server_stats_ms.assign(stats_now.begin(),
                                                  stats_now.end());
                     reply.encode(enc);
                   });
      } catch (const SystemException& e) {
        orb_->metrics().counter("server.replies.client_gone").add();
        PARDIS_LOG_DEBUG << "reply for request " << header.request_id
                         << " dropped (client gone): " << e.what();
      }
    }
    if (ok) {
      for (const ServerCall::OutArg& out : call.out_args_) {
        // Find the matching request descriptor for the reply-distribution
        // rule.
        const orb::DSeqDescriptor* req_desc = nullptr;
        for (const auto& d : header.dseqs) {
          if (d.arg_index == out.desc.arg_index) req_desc = &d;
        }
        if (req_desc == nullptr) {
          throw INTERNAL("result for argument absent from request");
        }
        const dseq::DistTempl client_dist = client_reply_dist(
            *req_desc, out.desc.total_length, binding.client_ranks);
        const dseq::DistTempl server_dist =
            dist_from_counts(out.desc.src_counts);
        const dseq::RedistributionPlan plan(server_dist, client_dist);
        for (const dseq::Segment& seg : plan.outgoing(rank)) {
          io::GatherList frame = timer.time(Phase::kPack, [&] {
            cdr::Encoder enc;
            orb::begin_frame(enc, orb::MsgType::kArgTransfer);
            orb::ArgTransferHeader h;
            h.request_id = header.request_id;
            h.arg_index = out.desc.arg_index;
            h.src_rank = static_cast<cdr::ULong>(rank);
            h.dst_rank = static_cast<cdr::ULong>(seg.dst_rank);
            h.dst_offset = seg.dst_offset;
            h.count = seg.count;
            h.encode(enc);
            io::GatherList gl;
            gl.append(enc.take());
            gl.pad_to(8);  // same wire layout as Encoder::align(8)
            // Borrowed view into out.chunk: zero copies.  Legal under the
            // gather.hpp lifetime contract — the send below is synchronous
            // and out_args_ outlives it.
            gl.append_view(BytesView(out.chunk).subspan(
                seg.src_offset * out.desc.elem_size,
                seg.count * out.desc.elem_size));
            return gl;
          });
          try {
            timer.time(Phase::kSend, [&] {
              send_framed(
                  *binding.data[static_cast<std::size_t>(seg.dst_rank)],
                  std::move(frame));
            });
          } catch (const SystemException& e) {
            // One dead data port; keep streaming the rest — each client
            // rank fails or completes independently, and the ranks of this
            // server stay alive and in step either way.
            orb_->metrics().counter("server.replies.client_gone").add();
            PARDIS_LOG_DEBUG << "result segment for request "
                             << header.request_id << " dropped (client gone): "
                             << e.what();
          }
        }
      }
    }
  }

  timer.add(Phase::kTotal, Clock::now() - t0);
  PARDIS_LOG_DEBUG << "rank " << comm_->rank() << " handle_request end ("
                   << header.operation << ")";
}

std::pair<orb::ReplyStatus, pardis::Bytes> SpmdServer::guarded_dispatch(
    SpmdServant* servant, const std::string& object_key, ServerCall& call) {
  try {
    if (servant == nullptr) {
      throw OBJECT_NOT_EXIST("object '" + object_key + "' was deactivated");
    }
    servant->dispatch(call);
    return {orb::ReplyStatus::kNoException, call.results_.take()};
  } catch (const orb::TypedUserException& e) {
    orb_->metrics().counter("server.user_exceptions").add();
    return {orb::ReplyStatus::kUserException,
            orb::marshal_user_exception(
                e, [&](cdr::Encoder& enc) { e.encode_body(enc); })};
  } catch (const UserException& e) {
    orb_->metrics().counter("server.user_exceptions").add();
    return {orb::ReplyStatus::kUserException,
            orb::marshal_user_exception(e, nullptr)};
  } catch (const SystemException& e) {
    orb_->metrics().counter("server.system_exceptions").add();
    if (e.kind() == "MARSHAL") {
      orb_->metrics().counter("server.marshal_errors").add();
    }
    return {orb::ReplyStatus::kSystemException,
            orb::marshal_system_exception(e)};
  } catch (const std::exception& e) {
    orb_->metrics().counter("server.system_exceptions").add();
    return {orb::ReplyStatus::kSystemException,
            orb::marshal_system_exception(
                INTERNAL(std::string("servant failure: ") + e.what(),
                         Completion::kMaybe))};
  }
}

// ---- pipelined-request worker pool (rank 0) --------------------------------

void SpmdServer::admit_pipelined(cdr::ULong binding_id, BindingState& bs,
                                 pardis::Bytes frame, const orb::Frame& info) {
  if (chaos_kill_every_ > 0 && ++chaos_admissions_ % chaos_kill_every_ == 0) {
    // Peer-kill chaos: drop this request on the floor and slam the control
    // stream shut while the client still has a window in flight.  Frames
    // already buffered keep draining into jobs whose replies then fail
    // ("client gone"), racing worker sends against the close on purpose.
    chaos_kills_->add();
    PARDIS_LOG_DEBUG << "chaos: killing control stream of binding "
                     << binding_id << " (admission " << chaos_admissions_
                     << ")";
    bs.control->close();
    return;
  }
  ensure_workers();
  PipelinedJob job;
  job.binding_id = binding_id;
  job.mux = *info.mux;
  if (info.trace) job.trace = *info.trace;
  job.frame = std::move(frame);
  job.info = info;
  job.control = bs.control;
  job.object_key = bs.object_key;
  job.enqueued = Clock::now();
  // Snapshot the servant here, on the event thread: workers never touch
  // the binding/activation tables.
  const auto activation = activations_.find(bs.object_key);
  job.servant =
      activation != activations_.end() ? activation->second.servant : nullptr;

  bool shed = false;
  {
    std::lock_guard<common::RankedMutex> lock(queue_mu_);
    if (queue_.size() >= queue_cap_) {
      shed = true;
    } else {
      queue_.push_back(std::move(job));
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  if (shed) {
    // Transient overload: return the request's credit with a Reject frame;
    // the client rethrows it as TRANSIENT and may retry.
    pipelined_rejects_->add();
    PARDIS_LOG_DEBUG << "shedding pipelined request " << job.mux.request_id
                     << " (queue full at " << queue_cap_ << ")";
    try {
      send_mux_frame(
          *job.control, orb::MsgType::kReply,
          orb::MuxInfo{job.mux.request_id, orb::FrameKind::kReject, 1},
          [](cdr::Encoder&) {});
    } catch (const SystemException&) {
      // Client already gone; its window dies with the stream.
    }
    return;
  }
  queue_cv_.notify_one();
}

void SpmdServer::ensure_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    // Thread boundary: an exception escaping a worker would std::terminate
    // the whole rank, not just drop the one request.
    workers_.emplace_back([this] {
      try {
        worker_loop();
      } catch (...) {
        PARDIS_LOG_WARN << "pipelined worker exiting on unexpected error";
      }
    });
  }
  PARDIS_LOG_DEBUG << "started " << worker_count_
                   << " pipelined-request workers (queue " << queue_cap_
                   << ")";
}

void SpmdServer::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<common::RankedMutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // Drain abandoned jobs outside the lock: a queued job can hold the last
  // reference to its client's stream, and destroying a TCP stream takes the
  // reactor lock — which ranks below the queue lock.
  std::deque<PipelinedJob> abandoned;
  {
    std::lock_guard<common::RankedMutex> lock(queue_mu_);
    stopping_ = false;
    abandoned.swap(queue_);
    queue_depth_->set(0);
  }
}

void SpmdServer::worker_loop() {
  for (;;) {
    PipelinedJob job;
    {
      std::unique_lock<common::RankedMutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    process_pipelined(std::move(job));
  }
}

void SpmdServer::process_pipelined(PipelinedJob job) {
  pipelined_requests_->add();
  pipeline_inflight_->add(1);
  // Admission-queue wait: enqueue on the event thread to dequeue here.
  // Spans carry the inbound trace context so this request's server-side
  // phases land on the client's timeline (docs/observability.md); the
  // worker's own chrome tid keeps concurrent workers on separate tracks.
  const Clock::time_point dequeued = Clock::now();
  const double queue_wait_us = to_us(dequeued - job.enqueued);
  pipeline_queue_wait_us_->add(queue_wait_us);
  obs::Tracer& tracer = orb_->tracer();
  const std::uint32_t worker_tid = obs::this_thread_tid();
  const std::uint32_t server_pid = obs::role_pid(obs::kServerPid);
  if (job.trace.trace_id != 0) {
    tracer.record("queue_wait " + std::to_string(job.mux.request_id),
                  "pipeline", server_pid, worker_tid, job.enqueued, dequeued,
                  job.trace.trace_id);
  }
  std::string operation;
  double exec_us = 0.0;
  std::pair<orb::ReplyStatus, pardis::Bytes> outcome{
      orb::ReplyStatus::kNoException, {}};
  try {
    auto dec = orb::body_decoder(job.frame, job.info);
    orb::RequestHeader header = orb::RequestHeader::decode(dec);
    if (!header.dseqs.empty()) {
      throw MARSHAL(
          "pipelined requests cannot carry distributed arguments; use the "
          "collective invoke path");
    }
    ServerCall call;
    call.comm_ = comm_;
    call.operation_ = header.operation;
    call.collective_ = false;
    call.scalar_args_ = std::move(header.scalar_args);
    call.args_little_endian_ = job.info.little_endian;
    operation = header.operation;
    const Clock::time_point exec_t0 = Clock::now();
    outcome = guarded_dispatch(job.servant, job.object_key, call);
    const Clock::time_point exec_t1 = Clock::now();
    exec_us = to_us(exec_t1 - exec_t0);
    pipeline_exec_us_->add(exec_us);
    if (job.trace.trace_id != 0) {
      tracer.record("exec " + operation, "pipeline", server_pid, worker_tid,
                    exec_t0, exec_t1, job.trace.trace_id);
    }
  } catch (const SystemException& e) {
    orb_->metrics().counter("server.system_exceptions").add();
    if (e.kind() == "MARSHAL") {
      orb_->metrics().counter("server.marshal_errors").add();
    }
    outcome = {orb::ReplyStatus::kSystemException,
               orb::marshal_system_exception(e)};
  }

  // Always reply — the reply frame is also the credit grant keeping the
  // client's window flowing.  Concurrent senders on one stream are safe:
  // both backends serialize frames internally.  Sampled requests echo the
  // inbound trace context on the reply so a wire capture pairs both
  // directions by trace id.
  const Clock::time_point reply_t0 = Clock::now();
  try {
    send_mux_frame(*job.control, orb::MsgType::kReply,
                   orb::MuxInfo{job.mux.request_id, orb::FrameKind::kData, 1},
                   job.trace, [&](cdr::Encoder& enc) {
                     orb::ReplyHeader reply;
                     reply.request_id = job.mux.request_id;
                     reply.status = outcome.first;
                     reply.payload = std::move(outcome.second);
                     reply.encode(enc);
                   });
    credits_granted_->add();
  } catch (const SystemException& e) {
    PARDIS_LOG_DEBUG << "pipelined reply for request " << job.mux.request_id
                     << " dropped (client gone): " << e.what();
  }
  const Clock::time_point done = Clock::now();
  if (job.trace.trace_id != 0) {
    tracer.record("reply " + std::to_string(job.mux.request_id), "pipeline",
                  server_pid, worker_tid, reply_t0, done, job.trace.trace_id);
  }
  const double total_us = to_us(done - job.enqueued);
  pipeline_latency_us_->add(total_us);
  obs::SlowLog& slow = orb_->obs().slow_log();
  if (slow.enabled()) {
    obs::SlowLog::Entry entry;
    entry.operation = operation.empty() ? "<malformed>" : operation;
    entry.request_id = job.mux.request_id;
    entry.binding_id = job.binding_id;
    entry.trace_id = job.trace.trace_id;
    entry.queue_wait_us = queue_wait_us;
    entry.exec_us = exec_us;
    entry.total_us = total_us;
    slow.observe(std::move(entry));
  }
  pipeline_inflight_->add(-1);
}

}  // namespace pardis::transfer
