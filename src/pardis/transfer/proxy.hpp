// Common base of generated client proxies.
//
// A proxy is the client-side face of an interface (the paper's generated
// stub class, e.g. `class diff_object : public PARDIS::Object`).  It holds
// either a collective SpmdBinding (after `_spmd_bind`) or a per-thread
// DirectBinding (after `_bind`) and funnels generated method bodies through
// _invoke.  Proxies are cheap to copy; copies share the binding.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pardis/orb/future.hpp"
#include "pardis/transfer/spmd_client.hpp"

namespace pardis::transfer {

class ProxyBase {
 public:
  /// Transfer method used by subsequent invocations with distributed
  /// arguments (paper §3; default multi-port).
  void _transfer_method(orb::TransferMethod m) { method_ = m; }
  orb::TransferMethod _transfer_method() const { return method_; }

  bool _is_spmd() const { return spmd_ != nullptr; }

  const InvocationStats& _last_stats() const {
    require_spmd();
    return spmd_->last_stats();
  }
  const std::vector<double>& _last_server_stats() const {
    require_spmd();
    return spmd_->last_server_stats();
  }

  const orb::ObjectRef& _object() const {
    return spmd_ ? spmd_->object() : direct_binding().object();
  }

  SpmdBinding& _spmd_binding() {
    require_spmd();
    return *spmd_;
  }

  void _unbind() {
    if (spmd_) spmd_->unbind();
    if (direct_) direct_->unbind();
  }

 protected:
  ProxyBase() = default;

  void _init_spmd(SpmdBinding binding) {
    spmd_ = std::make_shared<SpmdBinding>(std::move(binding));
  }
  void _init_direct(DirectBinding binding) {
    direct_ = std::make_shared<DirectBinding>(std::move(binding));
  }

  /// Invocation with distributed arguments; requires a collective binding.
  pardis::Bytes _invoke(const std::string& operation, pardis::Bytes args,
                        const std::vector<DSeqArgBase*>& dseqs,
                        bool response_expected) {
    if (dseqs.empty() && direct_) {
      return direct_->invoke(operation, std::move(args), response_expected);
    }
    require_spmd();
    CallOptions opts;
    opts.method = method_;
    opts.response_expected = response_expected;
    return spmd_->invoke(operation, std::move(args), dseqs, opts);
  }

  orb::Future<pardis::Bytes> _invoke_nb(const std::string& operation,
                                        pardis::Bytes args,
                                        std::vector<DSeqArgBase*> dseqs,
                                        bool response_expected) {
    require_spmd();
    CallOptions opts;
    opts.method = method_;
    opts.response_expected = response_expected;
    return spmd_->invoke_nb(operation, std::move(args), std::move(dseqs),
                            opts);
  }

 private:
  const DirectBinding& direct_binding() const {
    if (!direct_) {
      throw BAD_PARAM("proxy is not bound");
    }
    return *direct_;
  }
  void require_spmd() const {
    if (!spmd_) {
      throw BAD_PARAM(
          "operation requires a collective binding (_spmd_bind); this proxy "
          "was bound with _bind or not bound at all");
    }
  }

  std::shared_ptr<SpmdBinding> spmd_;
  std::shared_ptr<DirectBinding> direct_;
  orb::TransferMethod method_ = orb::TransferMethod::kMultiPort;
};

}  // namespace pardis::transfer
