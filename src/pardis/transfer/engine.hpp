// Shared machinery of the two transfer engines.
//
// Both the client (spmd_client) and server (spmd_server) sides of an
// invocation need: the server's per-argument distribution policy (exported
// at bind time so the client "based on information provided by the ORB"
// can route multi-port segments, §3.3), descriptor construction, and the
// deterministic rule for the client-side distribution of reply data.

#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pardis/dseq/dist_templ.hpp"
#include "pardis/orb/protocol.hpp"
#include "pardis/transfer/dseq_arg.hpp"

namespace pardis::transfer {

/// Server-side preset distributions for operation arguments (paper §2.2:
/// "The server can set the distribution of a distributed sequence which is
/// an `in' parameter to any of its operations before registering;
/// otherwise, the distribution for that sequence will default to uniform
/// blockwise.").  The table travels to clients in the BindAck so both sides
/// derive identical server templates.
class ArgDistPolicy {
 public:
  /// Presets the distribution of (operation, arg_index).
  void set(const std::string& operation, cdr::ULong arg_index,
           dseq::Proportions proportions);

  /// The server-side template for an argument of `total_length` elements
  /// over `nranks` server threads (uniform blockwise when not preset).
  dseq::DistTempl server_dist(const std::string& operation,
                              cdr::ULong arg_index,
                              std::uint64_t total_length, int nranks) const;

  void encode(cdr::Encoder& enc) const;
  static ArgDistPolicy decode(cdr::Decoder& dec);

  bool empty() const noexcept { return preset_.empty(); }

 private:
  std::map<std::pair<std::string, cdr::ULong>, dseq::Proportions> preset_;
};

/// Builds the request descriptor for one client-side argument.
orb::DSeqDescriptor make_request_descriptor(cdr::ULong arg_index,
                                            const DSeqArgBase& arg);

/// The deterministic client-side distribution of inout/out reply data:
/// reuse the distribution the client supplied in the request when its
/// length still matches the reply; otherwise fall back to uniform blockwise
/// (paper §2.2: "The distribution of return values is always assumed to be
/// blockwise", and out arguments default to uniform blockwise unless preset).
/// Both client and server compute this from the same inputs.
dseq::DistTempl client_reply_dist(const orb::DSeqDescriptor& request_desc,
                                  std::uint64_t reply_length,
                                  int client_ranks);

/// DistTempl <-> descriptor src_counts conversion.
dseq::DistTempl dist_from_counts(const std::vector<cdr::ULongLong>& counts);
std::vector<cdr::ULongLong> counts_of(const dseq::DistTempl& dist);

/// Validates that a peer descriptor matches the local argument's type.
void check_elem_type(const orb::DSeqDescriptor& desc, const DSeqArgBase& arg);

}  // namespace pardis::transfer
