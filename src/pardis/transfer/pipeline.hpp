// Client-side reply demultiplexer and credit gate for pipelined
// invocations (docs/pipelining.md).
//
// A ReplyRouter owns the receive side of one control stream on which many
// logical requests are in flight at once.  Senders declare interest with
// expect(request_id) before the frame leaves, then block in
// await(request_id) until *their* reply arrives; whichever blocked thread
// reaches the stream first becomes the reader (shared-reader pattern),
// recv()s outside the lock, and routes the frame into the pending-reply
// table — so replies are fulfilled in whatever order the server produces
// them, with no dedicated reader thread.
//
// Flow control is credit-based: the router starts with the window granted
// by the server's BindAck; take_credit() consumes one slot per pipelined
// request (blocking — and pumping the stream — while the window is
// exhausted) and every mux reply/reject frame returns the slots named in
// its prologue's credit field.
//
// Routed frames:
//   * extended (mux) prologue — keyed by the prologue's request id;
//     kReject fulfills the slot with `rejected` set (the server shed the
//     request), kCredit is a pure window grant;
//   * plain kReply — keyed by the leading request_id field of the
//     ReplyHeader body, so synchronous invocations on the same stream
//     cannot steal a pipelined sibling's reply.
//
// Once the stream dies (EOF, timeout, or a malformed frame) the router is
// poisoned: every current and future await()/take_credit() throws
// COMM_FAILURE carrying the original reason.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "pardis/common/ranked_mutex.hpp"
#include "pardis/common/timing.hpp"
#include "pardis/obs/metrics.hpp"
#include "pardis/obs/trace.hpp"
#include "pardis/orb/protocol.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transfer {

class ReplyRouter {
 public:
  /// `window` is the negotiated in-flight cap (min of the server's BindAck
  /// credit grant and PARDIS_MAX_INFLIGHT); 0 degrades to 1.  `metrics` and
  /// `tracer` are nullable; with a tracer, sampled requests get a
  /// client-side wire span when their reply is routed.
  ReplyRouter(std::shared_ptr<transport::Stream> stream,
              obs::MetricsRegistry* metrics, std::uint32_t window,
              obs::Tracer* tracer = nullptr);

  ReplyRouter(const ReplyRouter&) = delete;
  ReplyRouter& operator=(const ReplyRouter&) = delete;

  /// One routed reply.  `rejected` means the server shed the request
  /// (kReject frame); `frame` is empty in that case.
  struct Reply {
    pardis::Bytes frame;
    orb::Frame info{};
    bool rejected = false;
  };

  /// Consumes one window slot for a pipelined request, blocking (and
  /// pumping the stream, which is what replenishes the window) while no
  /// credit is available.  Throws COMM_FAILURE once the stream is dead.
  void take_credit();

  /// Returns `n` slots to the window (send failed after take_credit()).
  void give_credit(std::uint32_t n = 1);

  /// Declares interest in `request_id`'s reply.  Must happen before the
  /// request frame is sent, or the reply could race the registration.
  /// `trace_id` (nonzero = sampled-in invocation) tags the wire span the
  /// router records when the reply is routed; the expect() timestamp is
  /// the span's start, so the measured interval covers request
  /// transmission, server turnaround, and reply transmission.
  void expect(cdr::ULong request_id, std::uint64_t trace_id = 0);

  /// Drops interest (the send failed, or a oneway needs no reply).
  void abandon(cdr::ULong request_id);

  /// Blocks until `request_id`'s reply arrives, servicing the stream and
  /// fulfilling other pending requests along the way.  Throws COMM_FAILURE
  /// if the stream dies first and BAD_PARAM without a prior expect().
  Reply await(cdr::ULong request_id);

  std::uint32_t window() const noexcept { return window_; }
  std::size_t inflight() const;
  std::uint32_t credits() const;

 private:
  struct Slot {
    std::optional<Reply> reply;
    Clock::time_point expected_at{};
    std::uint64_t trace_id = 0;   // 0 = not sampled
    std::uint32_t tid = 0;        // chrome tid of the expecting thread
  };

  /// Shared-reader step: with `lock` held, either waits for the active
  /// reader's result or becomes the reader, receiving one frame with the
  /// lock released and routing it under the lock.
  void pump(std::unique_lock<common::RankedMutex>& lock);
  void route_locked(pardis::Bytes frame, const orb::Frame& info);
  void set_inflight_locked();

  std::shared_ptr<transport::Stream> stream_;
  obs::Counter* pipelined_ = nullptr;
  obs::Counter* rejects_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* credits_gauge_ = nullptr;
  obs::Histogram* wire_us_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  mutable common::RankedMutex mu_{common::LockRank::kTransferPipeline};
  std::condition_variable_any cv_;
  std::uint32_t window_ = 1;
  std::uint32_t credits_ = 1;
  bool reader_active_ = false;
  bool dead_ = false;
  std::string death_reason_;
  std::map<cdr::ULong, Slot> pending_;
};

}  // namespace pardis::transfer
