// Type-erased view of a distributed-sequence argument.
//
// The transfer engines move argument bytes between computing threads
// without knowing the element type; generated stubs wrap each
// DSequence<T> argument in a TypedDSeqArg<T> which supplies the
// pack/unpack primitives at chunk granularity.

#pragma once

#include <cstring>

#include "pardis/common/bytes.hpp"
#include "pardis/common/endian.hpp"
#include "pardis/common/error.hpp"
#include "pardis/dseq/dsequence.hpp"
#include "pardis/orb/protocol.hpp"

namespace pardis::transfer {

class DSeqArgBase {
 public:
  virtual ~DSeqArgBase() = default;

  virtual orb::ArgDir direction() const = 0;
  virtual orb::ElemKind elem_kind() const = 0;
  virtual std::size_t elem_size() const = 0;
  virtual std::uint64_t total_length() const = 0;
  virtual const dseq::DistTempl& distribution() const = 0;

  /// Appends raw bytes of `count` local elements starting at local element
  /// `offset` to `out`.
  virtual void pack_local(std::uint64_t offset, std::uint64_t count,
                          pardis::Bytes& out) const = 0;

  /// Collective: replaces contents with `dist` and zeroed local storage,
  /// ready for unpack_segment writes.
  virtual void prepare(const dseq::DistTempl& dist) = 0;

  /// Writes `count` elements of raw data into local storage at local
  /// element offset `elem_offset`; `swap` indicates a byte-order mismatch
  /// with the sender.
  virtual void unpack_segment(std::uint64_t elem_offset, std::uint64_t count,
                              pardis::BytesView bytes, bool swap) = 0;
};

template <typename T>
class TypedDSeqArg final : public DSeqArgBase {
 public:
  TypedDSeqArg(dseq::DSequence<T>& seq, orb::ArgDir dir)
      : seq_(&seq), dir_(dir) {}

  orb::ArgDir direction() const override { return dir_; }
  orb::ElemKind elem_kind() const override {
    return orb::elem_kind_of<T>();
  }
  std::size_t elem_size() const override { return sizeof(T); }
  std::uint64_t total_length() const override { return seq_->length(); }
  const dseq::DistTempl& distribution() const override {
    return seq_->distribution();
  }

  void pack_local(std::uint64_t offset, std::uint64_t count,
                  pardis::Bytes& out) const override {
    if (offset + count > seq_->local_length()) {
      throw INTERNAL("pack_local: range exceeds local chunk");
    }
    const auto* src =
        reinterpret_cast<const std::uint8_t*>(seq_->local_data() + offset);
    out.insert(out.end(), src, src + count * sizeof(T));
  }

  void prepare(const dseq::DistTempl& dist) override {
    *seq_ = dseq::DSequence<T>::from_local_chunk(
        seq_->comm(), dist,
        std::vector<T>(dist.count(seq_->comm().rank())));
  }

  void unpack_segment(std::uint64_t elem_offset, std::uint64_t count,
                      pardis::BytesView bytes, bool swap) override {
    if (bytes.size() != count * sizeof(T)) {
      throw MARSHAL("unpack_segment: byte count mismatch");
    }
    if (elem_offset + count > seq_->local_length()) {
      throw MARSHAL("unpack_segment: range exceeds local chunk");
    }
    T* dst = seq_->local_data() + elem_offset;
    if (count != 0) {
      std::memcpy(dst, bytes.data(), bytes.size());
    }
    if (swap) {
      for (std::uint64_t i = 0; i < count; ++i) {
        dst[i] = pardis::byteswap_scalar(dst[i]);
      }
    }
  }

  dseq::DSequence<T>& sequence() { return *seq_; }

 private:
  dseq::DSequence<T>* seq_;
  orb::ArgDir dir_;
};

}  // namespace pardis::transfer
