// Client-side binding and invocation on SPMD objects (paper §2.1, §3).
//
// Two binding styles mirror the paper's proxy API:
//
//   * SpmdBinding::bind — the collective `_spmd_bind`: called by all
//     computing threads of a parallel client, which then act as one entity.
//     Every invocation through the binding is collective and may carry
//     distributed (DSequence) arguments using either transfer method.
//
//   * DirectBinding::bind — the non-collective `_bind`: one binding per
//     calling thread; invocations are non-collective and use the
//     non-distributed argument mapping (plain sequences marshaled into the
//     scalar argument stream).
//
// Invocation phase timings are accumulated into InvocationStats, from which
// the benchmark tables are printed.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pardis/obs/phase_trace.hpp"
#include "pardis/orb/future.hpp"
#include "pardis/orb/objref.hpp"
#include "pardis/orb/orb.hpp"
#include "pardis/orb/protocol.hpp"
#include "pardis/rts/communicator.hpp"
#include "pardis/transfer/engine.hpp"
#include "pardis/transfer/pipeline.hpp"
#include "pardis/transfer/stats.hpp"
#include "pardis/transport/transport.hpp"

namespace pardis::transfer {

struct CallOptions {
  orb::TransferMethod method = orb::TransferMethod::kMultiPort;
  bool response_expected = true;
};

/// The collective binding held by each computing thread of a parallel
/// client.  All methods below marked *collective* must be called by every
/// rank of the communicator with identical arguments.
class SpmdBinding {
 public:
  /// Collective `_spmd_bind`: resolves `object_name` (optionally restricted
  /// to `host_hint`), verifies the type, opens the control connection
  /// (rank 0) and one data connection from every client rank to every
  /// server thread's port.  Throws OBJECT_NOT_EXIST / INV_OBJREF.
  static SpmdBinding bind(orb::Orb& orb, rts::Communicator& comm,
                          const std::string& client_host,
                          const std::string& object_name,
                          const std::string& type_id,
                          const std::string& host_hint = {});

  SpmdBinding(SpmdBinding&&) = default;
  SpmdBinding& operator=(SpmdBinding&&) = default;

  /// Collective invocation.  `scalar_args` are the CDR-encoded
  /// non-distributed arguments (identical on all ranks, per the SPMD
  /// convention); `dseq_args` are the distributed arguments in signature
  /// order.  Returns the CDR-encoded scalar results on every rank.
  /// Rethrows server-raised exceptions on every rank.
  pardis::Bytes invoke(const std::string& operation,
                       pardis::Bytes scalar_args,
                       const std::vector<DSeqArgBase*>& dseq_args,
                       const CallOptions& opts = {});

  /// Collective non-blocking invocation: the send phase runs now; the
  /// returned future's get() — which must be called collectively by all
  /// ranks — completes the receive phase and yields the scalar results.
  /// Several invocations may be outstanding at once and their futures may
  /// be collected in any order, as long as every rank performs the same
  /// sequence of get() calls (replies to other requests are stashed until
  /// their future is collected).  All futures must be collected before
  /// unbind().
  orb::Future<pardis::Bytes> invoke_nb(
      const std::string& operation, pardis::Bytes scalar_args,
      std::vector<DSeqArgBase*> dseq_args, const CallOptions& opts = {});

  /// Phase timings of this rank's most recent invocation.
  const InvocationStats& last_stats() const noexcept { return stats_; }

  /// Server-side phase times (ms, index = Phase) reported in the most
  /// recent reply; reduced per the paper's convention.  Valid on all ranks.
  const std::vector<double>& last_server_stats() const noexcept {
    return server_stats_;
  }

  /// Collective: closes all connections of the binding.
  void unbind();

  const orb::ObjectRef& object() const noexcept { return object_; }
  int server_ranks() const noexcept {
    return static_cast<int>(data_conns_.size());
  }
  cdr::ULong binding_id() const noexcept { return binding_id_; }
  const ArgDistPolicy& server_policy() const noexcept { return policy_; }
  rts::Communicator& comm() const noexcept { return *comm_; }

 private:
  SpmdBinding() = default;

  /// One received-and-parsed frame held for a not-yet-collected future.
  struct StashedFrame {
    pardis::Bytes bytes;
    orb::Frame info{};
  };

  void send_phase(const std::string& operation, cdr::ULong request_id,
                  pardis::Bytes& scalar_args,
                  const std::vector<DSeqArgBase*>& dseq_args,
                  const std::vector<orb::DSeqDescriptor>& descriptors,
                  const CallOptions& opts);
  pardis::Bytes receive_phase(
      cdr::ULong request_id, const std::vector<DSeqArgBase*>& dseq_args,
      const std::vector<orb::DSeqDescriptor>& descriptors,
      const CallOptions& opts);
  /// Rank 0: next kReply frame for `request_id`, stashing replies that
  /// belong to other outstanding invocations.
  StashedFrame recv_reply_frame(cdr::ULong request_id,
                                obs::TracedTimer& timer);
  /// Next kArgTransfer frame for `request_id` on data connection `conn`,
  /// stashing frames for other outstanding invocations (per connection the
  /// segments of one request keep their send order).
  StashedFrame recv_data_frame(std::size_t conn, cdr::ULong request_id,
                               obs::TracedTimer& timer);

  orb::Orb* orb_ = nullptr;
  rts::Communicator* comm_ = nullptr;
  std::string client_host_;
  orb::ObjectRef object_;
  cdr::ULong binding_id_ = 0;
  ArgDistPolicy policy_;
  std::shared_ptr<transport::Stream> control_;  // rank 0 only
  /// Data connection to each server rank (index = server rank).
  std::vector<std::shared_ptr<transport::Stream>> data_conns_;
  cdr::ULong next_request_ = 0;  // replicated identically on every rank
  InvocationStats stats_;
  std::vector<double> server_stats_;
  /// Rank 0: kReply frames received while collecting a different request's
  /// future, keyed by request id.
  std::map<cdr::ULong, StashedFrame> reply_stash_;
  /// Per data connection: kArgTransfer frames for other outstanding
  /// requests, keyed by request id, in arrival order.
  std::vector<std::map<cdr::ULong, std::deque<StashedFrame>>> data_stash_;
};

/// Non-collective `_bind`: a single thread's private binding.  Arguments use
/// the non-distributed mapping and ride in the scalar stream; the transfer
/// on the wire is the centralized method.
class DirectBinding {
 public:
  static DirectBinding bind(orb::Orb& orb, const std::string& client_host,
                            const std::string& object_name,
                            const std::string& type_id,
                            const std::string& host_hint = {});

  DirectBinding(DirectBinding&&) = default;
  DirectBinding& operator=(DirectBinding&&) = default;

  /// Invokes `operation` with CDR-encoded arguments; returns the scalar
  /// results.  Rethrows server exceptions.
  pardis::Bytes invoke(const std::string& operation,
                       pardis::Bytes scalar_args,
                       bool response_expected = true);

  /// Pipelined invocation: sends a multiplexed request (consuming one
  /// credit of the negotiated window, blocking while the window is full)
  /// and returns a future for the scalar results.  Any number of futures
  /// up to the window may be outstanding; replies complete out of order.
  /// get() rethrows server exceptions, TRANSIENT when the server shed the
  /// request (retry it), and COMM_FAILURE when the stream died.
  orb::Future<pardis::Bytes> invoke_nb(const std::string& operation,
                                       pardis::Bytes scalar_args);

  /// Announces the unbind to the server (Unbind frame) and returns the
  /// control connection to the transport's idle pool for the next bind()
  /// to the same endpoint to reuse.  If pipelined futures are still
  /// uncollected, the stream is closed instead of pooled (their replies
  /// would poison the next user).
  void unbind();

  const orb::ObjectRef& object() const noexcept { return object_; }
  cdr::ULong binding_id() const noexcept { return binding_id_; }

  /// Negotiated pipeline window: min(server BindAck credit grant,
  /// PARDIS_MAX_INFLIGHT).
  std::uint32_t window() const noexcept { return window_; }

  /// Pipelined requests currently awaiting a reply.
  std::size_t inflight() const { return router_ ? router_->inflight() : 0; }

 private:
  DirectBinding() = default;

  orb::Orb* orb_ = nullptr;
  std::string client_host_;
  orb::ObjectRef object_;
  cdr::ULong binding_id_ = 0;
  std::shared_ptr<transport::Stream> control_;
  std::shared_ptr<ReplyRouter> router_;
  std::uint32_t window_ = 1;
  cdr::ULong next_request_ = 0;
};

/// Administrative: asks the server application owning `ref` to leave its
/// service loop (used by scenarios to wind down).
void send_shutdown(orb::Orb& orb, const std::string& from_host,
                   const orb::ObjectRef& ref);

}  // namespace pardis::transfer
